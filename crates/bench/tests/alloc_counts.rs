//! Heap-allocation accounting for the model hot paths, via a counting
//! global allocator. Complements the criterion wall-clock benches: a speedup
//! that comes with new per-event allocation churn is a regression waiting
//! for a bigger heap, and these counts catch it deterministically.
//!
//! Everything runs inside ONE test function — the counter is process-global,
//! and the default test runner is multi-threaded. Each workload is measured
//! in steady state: a warm-up pass first pays one-time growth (executor
//! slabs, cache maps, channel buffers), then the measured pass counts.
//!
//! The printed `allocs/event` figures feed the BENCH_* perf trajectory
//! (`cargo test -p ddio-bench --release --test alloc_counts -- --nocapture`).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use ddio_core::cache::{BlockCache, CacheConfig, FillReason, Lookup};
use ddio_core::{AdmissionQueue, LatencyHistogram, QosPolicy};
use ddio_net::{Envelope, NetConfig, Network, NetworkParams};
use ddio_sim::sync::Receiver;
use ddio_sim::{Sim, SimDuration};

/// Counts every allocation and reallocation; frees are not interesting here.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Executor storm: tasks ping-ponging through timers — the pure event loop
/// with no model code on top.
fn executor_storm(sim: &mut Sim) -> u64 {
    sim.reset();
    let ctx = sim.context();
    for t in 0..64u64 {
        let ctx = ctx.clone();
        sim.spawn(async move {
            for i in 0..256u64 {
                ctx.sleep(SimDuration::from_nanos(1 + (t + i) % 7)).await;
            }
        });
    }
    sim.run();
    sim.events_processed()
}

/// Cache storm: the per-block op mix of a transfer (miss-insert-evict,
/// re-reference, write) against one long-lived cache. Returns ops performed.
fn cache_storm(cache: &mut BlockCache) -> u64 {
    let mut ops = 0u64;
    for round in 0..64u64 {
        for b in 0..512u64 {
            let block = round * 311 + b;
            match cache.lookup(block) {
                Lookup::Hit(_) => {}
                Lookup::Miss => {
                    let (_e, _evicted) = cache.insert_filling(block, FillReason::Demand);
                    cache.mark_present(block);
                }
            }
            cache.record_write(block, 64);
            cache.mark_clean(block);
            cache.unpin(block);
            ops += 5;
        }
    }
    ops
}

/// Cache hit storm: every block already resident — lookups, writes, cleans,
/// unpins against a warm working set. Returns ops performed.
fn cache_hit_storm(cache: &mut BlockCache) -> u64 {
    let mut ops = 0u64;
    for _round in 0..64u64 {
        for block in 0..512u64 {
            match cache.lookup(block) {
                Lookup::Hit(_) => {}
                Lookup::Miss => {
                    let (_e, _evicted) = cache.insert_filling(block, FillReason::Demand);
                    cache.mark_present(block);
                }
            }
            cache.record_write(block, 64);
            cache.mark_clean(block);
            cache.unpin(block);
            ops += 4;
        }
    }
    ops
}

/// Fabric storm: every node hammering node 0 (sends) while node 0 posts
/// fire-and-forget back — both network hot paths at once. Returns executor
/// events processed.
fn fabric_storm(sim: &mut Sim) -> u64 {
    const NODES: usize = 8;
    // Divisible by NODES - 1, so the round-robin posts land evenly and every
    // drain's expectation is exact.
    const MSGS: usize = 56;
    sim.reset();
    let (net, mut inboxes) = Network::<u64>::new(
        sim.context(),
        NetConfig::DEFAULT,
        NetworkParams::default(),
        NODES,
    );
    fn drain(sim: &mut Sim, rx: Receiver<Envelope<u64>>, expect: usize) {
        sim.spawn(async move {
            let mut got = 0;
            while got < expect {
                if rx.recv().await.is_some() {
                    got += 1;
                }
            }
        });
    }
    for to in (1..NODES).rev() {
        drain(sim, inboxes.remove(to), MSGS / (NODES - 1));
    }
    drain(sim, inboxes.remove(0), (NODES - 1) * MSGS);
    for from in 1..NODES {
        let net = net.clone();
        sim.spawn(async move {
            for i in 0..MSGS {
                net.send(from, 0, 8192, i as u64).await;
            }
        });
    }
    {
        let net = net.clone();
        sim.spawn(async move {
            for i in 0..MSGS {
                let to = 1 + i % (NODES - 1);
                net.post(0, to, 1024, i as u64).await;
            }
        });
    }
    sim.run();
    sim.events_processed()
}

/// Serving storm: the per-request admission path — push into the QoS queue,
/// pop for admission, record latency and queue wait into the histograms —
/// across every policy. Returns ops performed.
fn serve_storm(
    queues: &mut [AdmissionQueue],
    latency: &mut LatencyHistogram,
    queue_wait: &mut LatencyHistogram,
) -> u64 {
    let mut ops = 0u64;
    for round in 0..64u64 {
        for q in queues.iter_mut() {
            for i in 0..32u64 {
                q.push((i % 4) as usize, round * 32 + i);
                ops += 1;
            }
            while let Some((tenant, id)) = q.pop() {
                // A plausible latency spread: spans many octaves so every
                // histogram path (exact sub-32 buckets and log buckets) runs.
                latency.record(1 + (id * 2_654_435_761 + tenant as u64) % 1_000_000_000);
                queue_wait.record((id * 40_503) % 1_000_000);
                ops += 3;
            }
        }
    }
    ops
}

#[test]
fn steady_state_allocations_per_event_stay_bounded() {
    // --- Executor ---
    let mut sim = Sim::new();
    executor_storm(&mut sim); // warm-up: slab + timer wheel growth
    let before = allocs();
    let events = executor_storm(&mut sim);
    let exec_rate = (allocs() - before) as f64 / events as f64;

    // --- Cache, miss-heavy (evict + refill every round) ---
    let mut cache = BlockCache::with_config(256, CacheConfig::DEFAULT);
    cache_storm(&mut cache); // warm-up: slab + block-map growth
    let before = allocs();
    let ops = cache_storm(&mut cache);
    let cache_rate = (allocs() - before) as f64 / ops as f64;

    // --- Cache, pure hits (working set fits) ---
    let mut cache = BlockCache::with_config(1024, CacheConfig::DEFAULT);
    cache_hit_storm(&mut cache); // warm-up: fills the working set
    let before = allocs();
    let hit_ops = cache_hit_storm(&mut cache);
    let hit_rate = (allocs() - before) as f64 / hit_ops as f64;

    // --- Fabric ---
    let mut sim = Sim::new();
    fabric_storm(&mut sim); // warm-up: NI resources + channel buffers
    let before = allocs();
    let events = fabric_storm(&mut sim);
    let fabric_rate = (allocs() - before) as f64 / events as f64;

    // --- Serving (admission queues + latency histograms) ---
    let mut queues: Vec<AdmissionQueue> = [
        QosPolicy::Fifo,
        QosPolicy::FairShare,
        QosPolicy::Weighted,
        QosPolicy::TenantPriority,
    ]
    .into_iter()
    .map(|qos| AdmissionQueue::new(qos, 4))
    .collect();
    let mut latency = LatencyHistogram::new();
    let mut queue_wait = LatencyHistogram::new();
    // Warm-up: queue VecDeques grow to the burst's high-water mark (the
    // histograms pre-allocate their whole bucket table in `new`).
    serve_storm(&mut queues, &mut latency, &mut queue_wait);
    let before = allocs();
    let serve_ops = serve_storm(&mut queues, &mut latency, &mut queue_wait);
    let serve_rate = (allocs() - before) as f64 / serve_ops as f64;

    println!("alloc_counts: executor_storm {exec_rate:.4} allocs/event");
    println!("alloc_counts: cache_miss_storm {cache_rate:.4} allocs/op");
    println!("alloc_counts: cache_hit_storm {hit_rate:.4} allocs/op");
    println!("alloc_counts: fabric_storm {fabric_rate:.4} allocs/event");
    println!("alloc_counts: serve_storm {serve_rate:.4} allocs/op");

    // Steady-state bounds. The executor storm re-boxes each spawned future
    // (64 spawns per ~18k events); the cache hit path is allocation-free
    // once the slab and map reach size, while each miss-insert still pays
    // one `Event` allocation for its fill (waiters must be able to clone
    // it); the fabric pays one boxed task per fire-and-forget post plus
    // channel wakes. Generous headroom over the measured rates so only a
    // real regression (per-event churn) trips them.
    assert!(
        exec_rate < 0.05,
        "executor storm allocates {exec_rate:.4}/event — hot loop churn"
    );
    assert!(
        cache_rate < 0.25,
        "cache miss storm allocates {cache_rate:.4}/op — more than the fill event"
    );
    assert!(
        hit_rate == 0.0,
        "cache hit storm allocates {hit_rate:.4}/op — the hit path must be allocation-free"
    );
    assert!(
        fabric_rate < 0.5,
        "fabric storm allocates {fabric_rate:.4}/event — send/post churn"
    );
    assert!(
        serve_rate == 0.0,
        "serve storm allocates {serve_rate:.4}/op — the admission/record path \
         must be allocation-free in steady state"
    );
}
