//! `ddio-patterns`: HPF array-distribution access patterns.
//!
//! Implements the file-access patterns of Figure 2 of Kotz's *Disk-Directed
//! I/O for MIMD Multiprocessors*: one- and two-dimensional arrays of records
//! distributed over compute processors with NONE / BLOCK / CYCLIC
//! distributions per dimension, plus the ALL pattern (`ra`) in which every CP
//! reads the entire file.
//!
//! The central type is [`PatternInstance`], which binds a named
//! [`AccessPattern`] to a machine size and record size and answers the two
//! questions the file systems need:
//!
//! * [`PatternInstance::chunks_for_cp`] — the contiguous file chunks a CP
//!   requests under traditional caching;
//! * [`PatternInstance::pieces_in`] — how one file block's bytes fan out to
//!   CP memories, which is what a disk-directed IOP needs to route data.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod chunks;
mod dist;
mod pattern;

pub use chunks::Chunk;
pub use dist::{processor_grid, Dist};
pub use pattern::{AccessKind, AccessPattern, ArrayShape, Distribution, PatternInstance};
