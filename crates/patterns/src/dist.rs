//! HPF-style per-dimension distributions: NONE, BLOCK, CYCLIC.
//!
//! These are the element-to-processor mappings of Figure 2 of the paper,
//! taken from High Performance Fortran: a dimension may be not distributed
//! (NONE — the whole extent lives on one processor row/column), distributed
//! in contiguous blocks (BLOCK), or dealt round-robin (CYCLIC).

/// How one dimension of an array is distributed over one dimension of the
/// processor grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dist {
    /// The dimension is not distributed (collapsed onto one processor).
    None,
    /// Contiguous blocks of `ceil(n/p)` elements per processor.
    Block,
    /// Elements dealt round-robin: element `i` goes to processor `i mod p`.
    Cyclic,
}

impl Dist {
    /// One-letter abbreviation used in pattern names (`n`, `b`, `c`).
    pub fn letter(self) -> char {
        match self {
            Dist::None => 'n',
            Dist::Block => 'b',
            Dist::Cyclic => 'c',
        }
    }

    /// Parses the one-letter abbreviation.
    pub fn from_letter(c: char) -> Option<Dist> {
        match c {
            'n' => Some(Dist::None),
            'b' => Some(Dist::Block),
            'c' => Some(Dist::Cyclic),
            _ => None,
        }
    }

    /// Number of processors this distribution actually spreads the dimension
    /// over, given `p` available along that grid dimension.
    pub fn processors_used(self, p: usize) -> usize {
        match self {
            Dist::None => 1,
            Dist::Block | Dist::Cyclic => p,
        }
    }

    /// Maps element `i` of a dimension of extent `n` distributed over `p`
    /// processors to `(owner, local_index)`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n` or `p == 0`.
    pub fn map(self, i: u64, n: u64, p: usize) -> (usize, u64) {
        assert!(p > 0, "cannot distribute over zero processors");
        assert!(i < n, "element index {i} out of range (extent {n})");
        match self {
            Dist::None => (0, i),
            Dist::Block => {
                let b = n.div_ceil(p as u64);
                let owner = (i / b) as usize;
                (owner, i - owner as u64 * b)
            }
            Dist::Cyclic => ((i % p as u64) as usize, i / p as u64),
        }
    }

    /// Number of elements of a dimension of extent `n` that processor
    /// `owner` (of `p`) receives.
    pub fn count(self, n: u64, p: usize, owner: usize) -> u64 {
        assert!(p > 0, "cannot distribute over zero processors");
        match self {
            Dist::None => {
                if owner == 0 {
                    n
                } else {
                    0
                }
            }
            Dist::Block => {
                let b = n.div_ceil(p as u64);
                let start = owner as u64 * b;
                if start >= n {
                    0
                } else {
                    (n - start).min(b)
                }
            }
            Dist::Cyclic => {
                let owner = owner as u64;
                if owner >= n {
                    0
                } else {
                    (n - owner).div_ceil(p as u64)
                }
            }
        }
    }
}

/// Chooses the processor-grid shape `(rows, cols)` for a 2-D distribution
/// over `p` processors: the largest divisor of `p` that is at most `sqrt(p)`
/// becomes the number of processor rows (so 16 CPs form a 4x4 grid, 8 CPs a
/// 2x4 grid). Dimensions distributed as NONE collapse their grid dimension
/// to 1.
pub fn processor_grid(p: usize, rows: Dist, cols: Dist) -> (usize, usize) {
    assert!(p > 0, "need at least one processor");
    match (rows, cols) {
        (Dist::None, Dist::None) => (1, 1),
        (Dist::None, _) => (1, p),
        (_, Dist::None) => (p, 1),
        _ => {
            let mut r = 1;
            for d in 1..=p {
                if d * d > p {
                    break;
                }
                if p % d == 0 {
                    r = d;
                }
            }
            (r, p / r)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn letters_round_trip() {
        for d in [Dist::None, Dist::Block, Dist::Cyclic] {
            assert_eq!(Dist::from_letter(d.letter()), Some(d));
        }
        assert_eq!(Dist::from_letter('x'), None);
    }

    #[test]
    fn none_maps_everything_to_processor_zero() {
        for i in 0..8 {
            assert_eq!(Dist::None.map(i, 8, 4), (0, i));
        }
        assert_eq!(Dist::None.count(8, 4, 0), 8);
        assert_eq!(Dist::None.count(8, 4, 1), 0);
    }

    #[test]
    fn block_matches_figure_2_vector_example() {
        // 1x8 vector over 4 processors, BLOCK: chunks of 2.
        let owners: Vec<usize> = (0..8).map(|i| Dist::Block.map(i, 8, 4).0).collect();
        assert_eq!(owners, vec![0, 0, 1, 1, 2, 2, 3, 3]);
        for p in 0..4 {
            assert_eq!(Dist::Block.count(8, 4, p), 2);
        }
    }

    #[test]
    fn cyclic_matches_figure_2_vector_example() {
        // 1x8 vector over 4 processors, CYCLIC: 0 1 2 3 0 1 2 3.
        let owners: Vec<usize> = (0..8).map(|i| Dist::Cyclic.map(i, 8, 4).0).collect();
        assert_eq!(owners, vec![0, 1, 2, 3, 0, 1, 2, 3]);
        // Local indices advance by one per round.
        assert_eq!(Dist::Cyclic.map(4, 8, 4), (0, 1));
        assert_eq!(Dist::Cyclic.map(7, 8, 4), (3, 1));
    }

    #[test]
    fn block_handles_uneven_division() {
        // 10 elements over 4 processors: blocks of 3,3,3,1.
        let counts: Vec<u64> = (0..4).map(|p| Dist::Block.count(10, 4, p)).collect();
        assert_eq!(counts, vec![3, 3, 3, 1]);
        assert_eq!(counts.iter().sum::<u64>(), 10);
        assert_eq!(Dist::Block.map(9, 10, 4), (3, 0));
    }

    #[test]
    fn cyclic_handles_uneven_division() {
        let counts: Vec<u64> = (0..4).map(|p| Dist::Cyclic.count(10, 4, p)).collect();
        assert_eq!(counts, vec![3, 3, 2, 2]);
        assert_eq!(counts.iter().sum::<u64>(), 10);
    }

    #[test]
    fn counts_are_consistent_with_map_for_all_dists() {
        for dist in [Dist::None, Dist::Block, Dist::Cyclic] {
            for n in [1u64, 7, 16, 33] {
                for p in [1usize, 2, 3, 4, 5, 16] {
                    let mut counted = vec![0u64; p];
                    let mut max_local = vec![None::<u64>; p];
                    for i in 0..n {
                        let (owner, local) = dist.map(i, n, p);
                        counted[owner] += 1;
                        let entry = &mut max_local[owner];
                        *entry = Some(entry.map_or(local, |m: u64| m.max(local)));
                    }
                    for owner in 0..p {
                        assert_eq!(
                            counted[owner],
                            dist.count(n, p, owner),
                            "count mismatch dist={dist:?} n={n} p={p} owner={owner}"
                        );
                        // Local indices are dense: 0..count.
                        if counted[owner] > 0 {
                            assert_eq!(max_local[owner], Some(counted[owner] - 1));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn processor_grid_shapes() {
        assert_eq!(processor_grid(16, Dist::Block, Dist::Block), (4, 4));
        assert_eq!(processor_grid(8, Dist::Cyclic, Dist::Block), (2, 4));
        assert_eq!(processor_grid(16, Dist::None, Dist::Block), (1, 16));
        assert_eq!(processor_grid(16, Dist::Cyclic, Dist::None), (16, 1));
        assert_eq!(processor_grid(1, Dist::Block, Dist::Cyclic), (1, 1));
        assert_eq!(processor_grid(12, Dist::Block, Dist::Block), (3, 4));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn map_out_of_range_panics() {
        Dist::Block.map(8, 8, 4);
    }
}
