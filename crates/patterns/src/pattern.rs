//! The paper's named access patterns and their element-to-CP mappings.
//!
//! A pattern name is `r` or `w` (read or write) followed by the distribution:
//! `a` for ALL (every CP reads the whole file), one letter for a 1-D
//! distribution (`n`, `b`, `c`), or two letters for a 2-D distribution (rows
//! then columns). The full set used in Figures 3 and 4 is
//! `ra rn rb rc rnb rbb rcb rbc rcc rcn` and `wn wb wc wnb wbb wcb wbc wcc
//! wcn`.

use crate::dist::{processor_grid, Dist};

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Collective read: file to CP memories.
    Read,
    /// Collective write: CP memories to file.
    Write,
}

/// How the array is distributed over the CPs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Distribution {
    /// Every CP holds (reads) the entire array.
    All,
    /// A 1-D array distributed along its single dimension.
    OneDim(Dist),
    /// A 2-D row-major array distributed in both dimensions.
    TwoDim {
        /// Distribution of the row dimension.
        rows: Dist,
        /// Distribution of the column dimension.
        cols: Dist,
    },
}

/// A named access pattern (`ra`, `rb`, `wcc`, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AccessPattern {
    /// Read or write.
    pub access: AccessKind,
    /// The array distribution.
    pub distribution: Distribution,
}

impl AccessPattern {
    /// Parses a pattern name such as `"ra"`, `"rb"`, `"wcn"`.
    pub fn parse(name: &str) -> Option<AccessPattern> {
        let mut chars = name.chars();
        let access = match chars.next()? {
            'r' => AccessKind::Read,
            'w' => AccessKind::Write,
            _ => return None,
        };
        let rest: Vec<char> = chars.collect();
        let distribution = match rest.as_slice() {
            ['a'] => {
                if access == AccessKind::Write {
                    // "write ALL" is not meaningful (every CP writing every
                    // byte); the paper has no wa pattern.
                    return None;
                }
                Distribution::All
            }
            [d] => Distribution::OneDim(Dist::from_letter(*d)?),
            [r, c] => Distribution::TwoDim {
                rows: Dist::from_letter(*r)?,
                cols: Dist::from_letter(*c)?,
            },
            _ => return None,
        };
        Some(AccessPattern {
            access,
            distribution,
        })
    }

    /// The pattern's name in the paper's notation.
    pub fn name(&self) -> String {
        let mut s = String::new();
        s.push(match self.access {
            AccessKind::Read => 'r',
            AccessKind::Write => 'w',
        });
        match self.distribution {
            Distribution::All => s.push('a'),
            Distribution::OneDim(d) => s.push(d.letter()),
            Distribution::TwoDim { rows, cols } => {
                s.push(rows.letter());
                s.push(cols.letter());
            }
        }
        s
    }

    /// True for write patterns.
    pub fn is_write(&self) -> bool {
        self.access == AccessKind::Write
    }

    /// True for the ALL pattern (whole file to every CP).
    pub fn is_all(&self) -> bool {
        self.distribution == Distribution::All
    }

    /// True if the pattern uses a 2-D matrix.
    pub fn is_two_dim(&self) -> bool {
        matches!(self.distribution, Distribution::TwoDim { .. })
    }

    /// The read patterns evaluated in Figures 3 and 4, in the paper's order.
    pub fn paper_read_patterns() -> Vec<AccessPattern> {
        [
            "ra", "rn", "rb", "rc", "rnb", "rbb", "rcb", "rbc", "rcc", "rcn",
        ]
        .iter()
        .map(|n| AccessPattern::parse(n).expect("known pattern"))
        .collect()
    }

    /// The write patterns evaluated in Figures 3 and 4, in the paper's order.
    pub fn paper_write_patterns() -> Vec<AccessPattern> {
        ["wn", "wb", "wc", "wnb", "wbb", "wcb", "wbc", "wcc", "wcn"]
            .iter()
            .map(|n| AccessPattern::parse(n).expect("known pattern"))
            .collect()
    }

    /// All 19 patterns of Figures 3 and 4 (reads then writes).
    pub fn paper_all_patterns() -> Vec<AccessPattern> {
        let mut v = Self::paper_read_patterns();
        v.extend(Self::paper_write_patterns());
        v
    }

    /// The four patterns used in the sensitivity experiments (Figures 5-8).
    pub fn sensitivity_patterns() -> Vec<AccessPattern> {
        ["ra", "rn", "rb", "rc"]
            .iter()
            .map(|n| AccessPattern::parse(n).expect("known pattern"))
            .collect()
    }
}

/// The logical shape of the transferred array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrayShape {
    /// A vector of `len` records.
    OneDim {
        /// Number of records.
        len: u64,
    },
    /// A `rows` x `cols` matrix of records, stored row-major in the file.
    TwoDim {
        /// Number of rows.
        rows: u64,
        /// Number of columns.
        cols: u64,
    },
}

impl ArrayShape {
    /// Total number of records.
    pub fn records(&self) -> u64 {
        match *self {
            ArrayShape::OneDim { len } => len,
            ArrayShape::TwoDim { rows, cols } => rows * cols,
        }
    }

    /// Chooses the default shape for `n_records`: a vector for 1-D patterns,
    /// or the most square matrix whose row count divides `n_records`
    /// (10 MB of 8-byte records becomes 1024 x 1280; of 8 KB records,
    /// 32 x 40).
    pub fn default_for(pattern: AccessPattern, n_records: u64) -> ArrayShape {
        assert!(n_records > 0, "cannot shape an empty array");
        if pattern.is_two_dim() {
            let mut rows = 1;
            let mut d = 1;
            while d * d <= n_records {
                if n_records % d == 0 {
                    rows = d;
                }
                d += 1;
            }
            ArrayShape::TwoDim {
                rows,
                cols: n_records / rows,
            }
        } else {
            ArrayShape::OneDim { len: n_records }
        }
    }
}

/// An [`AccessPattern`] bound to a machine and file size: maps every record
/// of the file to its owning CP and its location in that CP's memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatternInstance {
    pattern: AccessPattern,
    n_cps: usize,
    record_bytes: u64,
    shape: ArrayShape,
    grid: (usize, usize),
}

impl PatternInstance {
    /// Binds `pattern` to `n_cps` compute processors and a file of
    /// `n_records` records of `record_bytes` bytes each, choosing the array
    /// shape with [`ArrayShape::default_for`].
    pub fn new(
        pattern: AccessPattern,
        n_cps: usize,
        n_records: u64,
        record_bytes: u64,
    ) -> PatternInstance {
        Self::with_shape(
            pattern,
            n_cps,
            record_bytes,
            ArrayShape::default_for(pattern, n_records),
        )
    }

    /// Binds `pattern` with an explicit array shape.
    ///
    /// # Panics
    ///
    /// Panics if there are zero CPs, zero-byte records, or an empty shape.
    pub fn with_shape(
        pattern: AccessPattern,
        n_cps: usize,
        record_bytes: u64,
        shape: ArrayShape,
    ) -> PatternInstance {
        assert!(n_cps > 0, "need at least one CP");
        assert!(record_bytes > 0, "record size must be non-zero");
        assert!(shape.records() > 0, "array must have at least one record");
        let grid = match pattern.distribution {
            Distribution::TwoDim { rows, cols } => processor_grid(n_cps, rows, cols),
            _ => (1, n_cps),
        };
        PatternInstance {
            pattern,
            n_cps,
            record_bytes,
            shape,
            grid,
        }
    }

    /// The bound pattern.
    pub fn pattern(&self) -> AccessPattern {
        self.pattern
    }

    /// Number of compute processors.
    pub fn n_cps(&self) -> usize {
        self.n_cps
    }

    /// Record size in bytes.
    pub fn record_bytes(&self) -> u64 {
        self.record_bytes
    }

    /// The array shape.
    pub fn shape(&self) -> ArrayShape {
        self.shape
    }

    /// The processor-grid shape used for 2-D distributions.
    pub fn grid(&self) -> (usize, usize) {
        self.grid
    }

    /// Total number of records in the file.
    pub fn n_records(&self) -> u64 {
        self.shape.records()
    }

    /// Total file size in bytes.
    pub fn file_bytes(&self) -> u64 {
        self.n_records() * self.record_bytes
    }

    /// True for the ALL pattern.
    pub fn is_all(&self) -> bool {
        self.pattern.is_all()
    }

    /// True for write patterns.
    pub fn is_write(&self) -> bool {
        self.pattern.is_write()
    }

    /// Maps a record index to `(owning CP, record index within that CP's
    /// local buffer)`.
    ///
    /// # Panics
    ///
    /// Panics for the ALL distribution (every CP owns every record — use
    /// [`PatternInstance::is_all`] and handle that case explicitly), or if
    /// `record` is out of range.
    pub fn owner_of(&self, record: u64) -> (usize, u64) {
        assert!(
            record < self.n_records(),
            "record {record} out of range ({} records)",
            self.n_records()
        );
        match self.pattern.distribution {
            Distribution::All => {
                panic!("owner_of is not single-valued for the ALL distribution")
            }
            Distribution::OneDim(d) => {
                let (owner, local) = d.map(record, self.n_records(), self.n_cps);
                (owner, local)
            }
            Distribution::TwoDim { rows, cols } => {
                let ArrayShape::TwoDim { rows: nr, cols: nc } = self.shape else {
                    panic!("2-D distribution bound to a 1-D shape");
                };
                let (pr, pc) = self.grid;
                let r = record / nc;
                let c = record % nc;
                let (owner_r, local_r) = rows.map(r, nr, pr);
                let (owner_c, local_c) = cols.map(c, nc, pc);
                let owner = owner_r * pc + owner_c;
                let local_width = cols.count(nc, pc, owner_c);
                (owner, local_r * local_width + local_c)
            }
        }
    }

    /// Number of records CP `cp` holds in its memory.
    pub fn cp_record_count(&self, cp: usize) -> u64 {
        assert!(cp < self.n_cps, "CP {cp} out of range");
        match self.pattern.distribution {
            Distribution::All => self.n_records(),
            Distribution::OneDim(d) => d.count(self.n_records(), self.n_cps, cp),
            Distribution::TwoDim { rows, cols } => {
                let ArrayShape::TwoDim { rows: nr, cols: nc } = self.shape else {
                    panic!("2-D distribution bound to a 1-D shape");
                };
                let (pr, pc) = self.grid;
                let owner_r = cp / pc;
                let owner_c = cp % pc;
                rows.count(nr, pr, owner_r) * cols.count(nc, pc, owner_c)
            }
        }
    }

    /// Number of bytes CP `cp` holds in its memory.
    pub fn cp_bytes(&self, cp: usize) -> u64 {
        self.cp_record_count(cp) * self.record_bytes
    }

    /// Total bytes moved by the collective operation (the file size, times
    /// the number of CPs for the ALL pattern).
    pub fn total_transfer_bytes(&self) -> u64 {
        if self.is_all() {
            self.file_bytes() * self.n_cps as u64
        } else {
            self.file_bytes()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_name_round_trip() {
        for name in [
            "ra", "rn", "rb", "rc", "rnb", "rbb", "rcb", "rbc", "rcc", "rcn", "wn", "wb", "wc",
            "wnb", "wbb", "wcb", "wbc", "wcc", "wcn",
        ] {
            let p = AccessPattern::parse(name).unwrap_or_else(|| panic!("parse {name}"));
            assert_eq!(p.name(), name);
        }
        assert!(AccessPattern::parse("wa").is_none());
        assert!(AccessPattern::parse("xb").is_none());
        assert!(AccessPattern::parse("rbbb").is_none());
        assert!(AccessPattern::parse("r").is_none());
        assert!(AccessPattern::parse("rz").is_none());
    }

    #[test]
    fn paper_pattern_lists_have_the_figure_counts() {
        assert_eq!(AccessPattern::paper_read_patterns().len(), 10);
        assert_eq!(AccessPattern::paper_write_patterns().len(), 9);
        assert_eq!(AccessPattern::paper_all_patterns().len(), 19);
        assert_eq!(AccessPattern::sensitivity_patterns().len(), 4);
    }

    #[test]
    fn default_shapes_match_the_design_doc() {
        let rbb = AccessPattern::parse("rbb").unwrap();
        // 10 MB of 8-byte records: 1024 x 1280.
        assert_eq!(
            ArrayShape::default_for(rbb, 1_310_720),
            ArrayShape::TwoDim {
                rows: 1024,
                cols: 1280
            }
        );
        // 10 MB of 8 KB records: 32 x 40.
        assert_eq!(
            ArrayShape::default_for(rbb, 1280),
            ArrayShape::TwoDim { rows: 32, cols: 40 }
        );
        // 1-D patterns stay vectors.
        let rb = AccessPattern::parse("rb").unwrap();
        assert_eq!(
            ArrayShape::default_for(rb, 1280),
            ArrayShape::OneDim { len: 1280 }
        );
    }

    #[test]
    fn rn_maps_everything_to_cp0() {
        let inst = PatternInstance::new(AccessPattern::parse("rn").unwrap(), 16, 1280, 8192);
        for r in [0u64, 100, 1279] {
            assert_eq!(inst.owner_of(r), (0, r));
        }
        assert_eq!(inst.cp_record_count(0), 1280);
        assert_eq!(inst.cp_record_count(1), 0);
    }

    #[test]
    fn rb_splits_the_vector_into_contiguous_blocks() {
        let inst = PatternInstance::new(AccessPattern::parse("rb").unwrap(), 4, 8, 8);
        let owners: Vec<usize> = (0..8).map(|r| inst.owner_of(r).0).collect();
        assert_eq!(owners, vec![0, 0, 1, 1, 2, 2, 3, 3]);
        for cp in 0..4 {
            assert_eq!(inst.cp_record_count(cp), 2);
        }
    }

    #[test]
    fn rc_deals_records_round_robin() {
        let inst = PatternInstance::new(AccessPattern::parse("rc").unwrap(), 4, 8, 8);
        let owners: Vec<usize> = (0..8).map(|r| inst.owner_of(r).0).collect();
        assert_eq!(owners, vec![0, 1, 2, 3, 0, 1, 2, 3]);
        assert_eq!(inst.owner_of(5), (1, 1));
    }

    #[test]
    fn rbb_partitions_the_matrix_into_quadrant_blocks() {
        // Figure 2: 8x8 matrix over 4 CPs as a 2x2 grid.
        let p = AccessPattern::parse("rbb").unwrap();
        let inst = PatternInstance::with_shape(p, 4, 8, ArrayShape::TwoDim { rows: 8, cols: 8 });
        assert_eq!(inst.grid(), (2, 2));
        // Record (row 0, col 0) belongs to CP 0; (0, 4) to CP 1; (4, 0) to CP 2;
        // (4, 4) to CP 3.
        assert_eq!(inst.owner_of(0).0, 0);
        assert_eq!(inst.owner_of(4).0, 1);
        assert_eq!(inst.owner_of(4 * 8).0, 2);
        assert_eq!(inst.owner_of(4 * 8 + 4).0, 3);
        for cp in 0..4 {
            assert_eq!(inst.cp_record_count(cp), 16);
        }
    }

    #[test]
    fn rcn_gives_each_cp_whole_rows_round_robin() {
        let p = AccessPattern::parse("rcn").unwrap();
        let inst = PatternInstance::with_shape(p, 4, 8, ArrayShape::TwoDim { rows: 8, cols: 8 });
        assert_eq!(inst.grid(), (4, 1));
        // Row r belongs to CP r mod 4, entire row.
        for r in 0..8u64 {
            for c in 0..8u64 {
                assert_eq!(inst.owner_of(r * 8 + c).0, (r % 4) as usize);
            }
        }
        assert_eq!(inst.cp_record_count(0), 16);
    }

    #[test]
    fn rnb_gives_each_cp_a_column_block() {
        let p = AccessPattern::parse("rnb").unwrap();
        let inst = PatternInstance::with_shape(p, 4, 8, ArrayShape::TwoDim { rows: 8, cols: 8 });
        assert_eq!(inst.grid(), (1, 4));
        for r in 0..8u64 {
            for c in 0..8u64 {
                assert_eq!(inst.owner_of(r * 8 + c).0, (c / 2) as usize);
            }
        }
    }

    #[test]
    fn all_records_are_covered_exactly_once_by_every_pattern() {
        for pattern in AccessPattern::paper_all_patterns() {
            if pattern.is_all() {
                continue;
            }
            let inst = PatternInstance::new(pattern, 16, 1280, 8192);
            let mut per_cp = [0u64; 16];
            for r in 0..inst.n_records() {
                let (cp, _) = inst.owner_of(r);
                per_cp[cp] += 1;
            }
            for (cp, &count) in per_cp.iter().enumerate() {
                assert_eq!(
                    count,
                    inst.cp_record_count(cp),
                    "pattern {} CP {cp}",
                    pattern.name()
                );
            }
            assert_eq!(per_cp.iter().sum::<u64>(), inst.n_records());
        }
    }

    #[test]
    fn local_indices_are_dense_and_unique() {
        for pattern in ["rb", "rc", "rbb", "rcc", "rbc", "rcb", "rcn", "rnb"] {
            let pattern = AccessPattern::parse(pattern).unwrap();
            let inst = PatternInstance::new(pattern, 4, 256, 8);
            let mut seen: Vec<Vec<bool>> = (0..4)
                .map(|cp| vec![false; inst.cp_record_count(cp) as usize])
                .collect();
            for r in 0..inst.n_records() {
                let (cp, local) = inst.owner_of(r);
                let slot = &mut seen[cp][local as usize];
                assert!(!*slot, "duplicate local index {local} on CP {cp}");
                *slot = true;
            }
            for (cp, flags) in seen.iter().enumerate() {
                assert!(
                    flags.iter().all(|&b| b),
                    "pattern {} CP {cp} has unused local slots",
                    inst.pattern().name()
                );
            }
        }
    }

    #[test]
    fn ra_total_transfer_is_multiplied_by_cps() {
        let inst = PatternInstance::new(AccessPattern::parse("ra").unwrap(), 16, 1280, 8192);
        assert!(inst.is_all());
        assert_eq!(inst.file_bytes(), 10 * 1024 * 1024);
        assert_eq!(inst.total_transfer_bytes(), 160 * 1024 * 1024);
        assert_eq!(inst.cp_record_count(7), 1280);
    }

    #[test]
    #[should_panic(expected = "not single-valued")]
    fn owner_of_panics_for_all_pattern() {
        let inst = PatternInstance::new(AccessPattern::parse("ra").unwrap(), 4, 64, 8);
        inst.owner_of(0);
    }
}
