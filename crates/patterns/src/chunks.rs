//! Chunk and piece generation.
//!
//! A *chunk* is a maximal run of file bytes that is contiguous both in the
//! file and in one CP's memory — the unit in which the traditional-caching
//! CPs issue requests ("each application process must call ReadCP once for
//! each contiguous chunk of the file, no matter how small").
//!
//! A *piece* is the same thing restricted to an arbitrary byte range of the
//! file — the unit a disk-directed IOP uses to route the contents of one file
//! block to the right CPs.

use crate::pattern::PatternInstance;

/// A contiguous run of file bytes destined for (or sourced from) one CP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunk {
    /// The owning CP.
    pub cp: usize,
    /// Starting byte offset in the file.
    pub file_offset: u64,
    /// Length in bytes.
    pub bytes: u64,
    /// Starting byte offset within the CP's local buffer.
    pub mem_offset: u64,
}

impl Chunk {
    /// One byte past the end of the chunk in the file.
    pub fn file_end(&self) -> u64 {
        self.file_offset + self.bytes
    }
}

impl PatternInstance {
    /// The chunks destined for CP `cp`, in file order.
    ///
    /// For the ALL pattern this is a single chunk covering the whole file.
    pub fn chunks_for_cp(&self, cp: usize) -> Vec<Chunk> {
        assert!(cp < self.n_cps(), "CP {cp} out of range");
        if self.is_all() {
            return vec![Chunk {
                cp,
                file_offset: 0,
                bytes: self.file_bytes(),
                mem_offset: 0,
            }];
        }
        let rs = self.record_bytes();
        let mut chunks = Vec::new();
        let mut current: Option<Chunk> = None;
        for r in 0..self.n_records() {
            let (owner, local) = self.owner_of(r);
            if owner != cp {
                continue;
            }
            let file_offset = r * rs;
            let mem_offset = local * rs;
            match current.as_mut() {
                Some(c) if c.file_end() == file_offset && c.mem_offset + c.bytes == mem_offset => {
                    c.bytes += rs;
                }
                _ => {
                    if let Some(c) = current.take() {
                        chunks.push(c);
                    }
                    current = Some(Chunk {
                        cp,
                        file_offset,
                        bytes: rs,
                        mem_offset,
                    });
                }
            }
        }
        if let Some(c) = current {
            chunks.push(c);
        }
        chunks
    }

    /// Decomposes the file byte range `[start, start + len)` into pieces, in
    /// file order. Records straddling the range boundary are clipped.
    ///
    /// For the ALL pattern every CP receives a copy, so the result contains
    /// one piece per CP per contiguous run.
    pub fn pieces_in(&self, start: u64, len: u64) -> Vec<Chunk> {
        let end = (start + len).min(self.file_bytes());
        let start = start.min(end);
        if start == end {
            return Vec::new();
        }
        if self.is_all() {
            return (0..self.n_cps())
                .map(|cp| Chunk {
                    cp,
                    file_offset: start,
                    bytes: end - start,
                    mem_offset: start,
                })
                .collect();
        }
        let rs = self.record_bytes();
        let first_record = start / rs;
        let last_record = (end - 1) / rs;
        let mut pieces: Vec<Chunk> = Vec::new();
        for r in first_record..=last_record {
            let rec_start = r * rs;
            let rec_end = rec_start + rs;
            let piece_start = rec_start.max(start);
            let piece_end = rec_end.min(end);
            let (cp, local) = self.owner_of(r);
            let mem_offset = local * rs + (piece_start - rec_start);
            let bytes = piece_end - piece_start;
            match pieces.last_mut() {
                Some(p)
                    if p.cp == cp
                        && p.file_end() == piece_start
                        && p.mem_offset + p.bytes == mem_offset =>
                {
                    p.bytes += bytes;
                }
                _ => pieces.push(Chunk {
                    cp,
                    file_offset: piece_start,
                    bytes,
                    mem_offset,
                }),
            }
        }
        pieces
    }

    /// The pattern's chunk size in records (the `cs` annotation of Figure 2):
    /// the largest contiguous run of file records destined for a single CP.
    pub fn chunk_size_records(&self) -> u64 {
        if self.is_all() {
            return self.n_records();
        }
        (0..self.n_cps())
            .flat_map(|cp| self.chunks_for_cp(cp))
            .map(|c| c.bytes / self.record_bytes())
            .max()
            .unwrap_or(0)
    }

    /// The pattern's stride in records (the `s` annotation of Figure 2): the
    /// file distance between the starts of consecutive chunks destined for
    /// the same CP, when that distance is constant. Returns `None` when a CP
    /// has fewer than two chunks or the distance varies.
    pub fn stride_records(&self, cp: usize) -> Option<u64> {
        let chunks = self.chunks_for_cp(cp);
        if chunks.len() < 2 {
            return None;
        }
        let rs = self.record_bytes();
        let first = (chunks[1].file_offset - chunks[0].file_offset) / rs;
        for w in chunks.windows(2) {
            if (w[1].file_offset - w[0].file_offset) / rs != first {
                return None;
            }
        }
        Some(first)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{AccessPattern, ArrayShape, PatternInstance};

    fn inst(name: &str, n_cps: usize, records: u64, record_bytes: u64) -> PatternInstance {
        PatternInstance::new(
            AccessPattern::parse(name).expect("valid pattern"),
            n_cps,
            records,
            record_bytes,
        )
    }

    fn inst_8x8(name: &str) -> PatternInstance {
        PatternInstance::with_shape(
            AccessPattern::parse(name).expect("valid pattern"),
            4,
            8,
            ArrayShape::TwoDim { rows: 8, cols: 8 },
        )
    }

    #[test]
    fn figure_2_vector_chunk_sizes() {
        // 1x8 vector over 4 CPs, 8-byte records.
        assert_eq!(inst("rn", 4, 8, 8).chunk_size_records(), 8);
        assert_eq!(inst("rb", 4, 8, 8).chunk_size_records(), 2);
        let rc = inst("rc", 4, 8, 8);
        assert_eq!(rc.chunk_size_records(), 1);
        assert_eq!(rc.stride_records(0), Some(4));
    }

    #[test]
    fn figure_2_matrix_chunk_sizes_and_strides() {
        // 8x8 matrix over 4 CPs (2x2 or 1x4/4x1 grids), as annotated in Figure 2.
        let rnb = inst_8x8("rnb");
        assert_eq!(rnb.chunk_size_records(), 2);
        assert_eq!(rnb.stride_records(0), Some(8));

        let rbb = inst_8x8("rbb");
        assert_eq!(rbb.chunk_size_records(), 4);
        assert_eq!(rbb.stride_records(0), Some(8));

        let rcb = inst_8x8("rcb");
        assert_eq!(rcb.chunk_size_records(), 4);
        assert_eq!(rcb.stride_records(0), Some(16));

        let rbc = inst_8x8("rbc");
        assert_eq!(rbc.chunk_size_records(), 1);
        assert_eq!(rbc.stride_records(0), Some(2));

        let rcc = inst_8x8("rcc");
        assert_eq!(rcc.chunk_size_records(), 1);
        // Figure 2 lists two strides (2 within a row, 10 across rows), so a
        // single constant stride does not exist.
        assert_eq!(rcc.stride_records(0), None);

        let rcn = inst_8x8("rcn");
        assert_eq!(rcn.chunk_size_records(), 8);
        assert_eq!(rcn.stride_records(0), Some(32));
    }

    #[test]
    fn chunks_cover_the_file_exactly_once() {
        for name in ["rn", "rb", "rc", "rbb", "rcc", "rcn", "rnb", "rbc", "rcb"] {
            let inst = inst(name, 4, 160, 64);
            let mut covered = vec![false; inst.file_bytes() as usize];
            for cp in 0..4 {
                for c in inst.chunks_for_cp(cp) {
                    for b in c.file_offset..c.file_end() {
                        assert!(!covered[b as usize], "{name}: byte {b} covered twice");
                        covered[b as usize] = true;
                    }
                }
            }
            assert!(covered.iter().all(|&b| b), "{name}: file not fully covered");
        }
    }

    #[test]
    fn chunks_fill_each_cp_buffer_exactly() {
        for name in ["rb", "rc", "rbb", "rcc", "rcn"] {
            let inst = inst(name, 4, 160, 64);
            for cp in 0..4 {
                let mut mem = vec![false; inst.cp_bytes(cp) as usize];
                for c in inst.chunks_for_cp(cp) {
                    for b in c.mem_offset..c.mem_offset + c.bytes {
                        assert!(
                            !mem[b as usize],
                            "{name}: CP {cp} mem byte {b} written twice"
                        );
                        mem[b as usize] = true;
                    }
                }
                assert!(
                    mem.iter().all(|&b| b),
                    "{name}: CP {cp} buffer not fully written"
                );
            }
        }
    }

    #[test]
    fn all_pattern_has_one_whole_file_chunk_per_cp() {
        let inst = inst("ra", 4, 160, 64);
        for cp in 0..4 {
            let chunks = inst.chunks_for_cp(cp);
            assert_eq!(chunks.len(), 1);
            assert_eq!(chunks[0].bytes, inst.file_bytes());
            assert_eq!(chunks[0].mem_offset, 0);
        }
        let pieces = inst.pieces_in(128, 64);
        assert_eq!(pieces.len(), 4);
        assert!(pieces.iter().all(|p| p.bytes == 64 && p.mem_offset == 128));
    }

    #[test]
    fn pieces_agree_with_chunks() {
        // Decomposing the whole file into pieces and grouping by CP must give
        // exactly the same byte ranges as chunks_for_cp.
        for name in ["rb", "rc", "rbb", "rcc", "rbc", "rcn"] {
            let inst = inst(name, 4, 160, 64);
            let pieces = inst.pieces_in(0, inst.file_bytes());
            let piece_bytes: u64 = pieces.iter().map(|p| p.bytes).sum();
            assert_eq!(piece_bytes, inst.file_bytes());
            for cp in 0..4 {
                let from_pieces: Vec<(u64, u64, u64)> = pieces
                    .iter()
                    .filter(|p| p.cp == cp)
                    .map(|p| (p.file_offset, p.bytes, p.mem_offset))
                    .collect();
                let from_chunks: Vec<(u64, u64, u64)> = inst
                    .chunks_for_cp(cp)
                    .iter()
                    .map(|c| (c.file_offset, c.bytes, c.mem_offset))
                    .collect();
                // Pieces may be split at nothing (whole file range), so they
                // should merge to the same runs.
                assert_eq!(from_pieces, from_chunks, "pattern {name} CP {cp}");
            }
        }
    }

    #[test]
    fn pieces_clip_partial_records_at_range_boundaries() {
        // Under BLOCK the two half-records both belong to CP 0 and are
        // contiguous in its memory, so they merge into one clipped piece.
        let block = inst("rb", 4, 16, 64);
        let pieces = block.pieces_in(32, 64);
        assert_eq!(pieces.len(), 1);
        assert_eq!(pieces[0].file_offset, 32);
        assert_eq!(pieces[0].bytes, 64);
        assert_eq!(pieces[0].mem_offset, 32);

        // Under CYCLIC the same byte range straddles two records owned by
        // different CPs, so the clipping is visible.
        let cyclic = inst("rc", 4, 16, 64);
        let pieces = cyclic.pieces_in(32, 64);
        assert_eq!(pieces.len(), 2);
        assert_eq!(
            pieces[0],
            Chunk {
                cp: 0,
                file_offset: 32,
                bytes: 32,
                mem_offset: 32
            }
        );
        assert_eq!(
            pieces[1],
            Chunk {
                cp: 1,
                file_offset: 64,
                bytes: 32,
                mem_offset: 0
            }
        );
    }

    #[test]
    fn pieces_of_an_8k_block_under_cyclic_8_byte_records() {
        // The stress case of the paper: 8-byte records dealt CYCLIC means a
        // file block fans out into one piece per record.
        let inst = inst("rc", 16, 16384, 8);
        let pieces = inst.pieces_in(0, 8192);
        assert_eq!(pieces.len(), 1024);
        assert!(pieces.iter().all(|p| p.bytes == 8));
        // Round-robin destination order.
        for (i, p) in pieces.iter().enumerate() {
            assert_eq!(p.cp, i % 16);
        }
    }

    #[test]
    fn pieces_of_an_8k_block_under_block_8k_records() {
        // 8 KB records distributed BLOCK: each block is exactly one piece.
        let inst = inst("rb", 16, 1280, 8192);
        for block in [0u64, 7, 100, 1279] {
            let pieces = inst.pieces_in(block * 8192, 8192);
            assert_eq!(pieces.len(), 1, "block {block}");
            assert_eq!(pieces[0].bytes, 8192);
        }
    }

    #[test]
    fn empty_and_out_of_range_piece_queries() {
        let inst = inst("rb", 4, 16, 64);
        assert!(inst.pieces_in(0, 0).is_empty());
        assert!(inst.pieces_in(inst.file_bytes(), 100).is_empty());
        // A range extending past EOF is clipped.
        let pieces = inst.pieces_in(inst.file_bytes() - 64, 1000);
        assert_eq!(pieces.iter().map(|p| p.bytes).sum::<u64>(), 64);
    }
}
