//! Property-based tests of the access-pattern machinery: for any pattern,
//! machine size, and record size, the chunks partition the file and the
//! per-block pieces agree with the per-CP chunks.

use proptest::prelude::*;

use ddio_patterns::{AccessPattern, PatternInstance};

fn arb_pattern() -> impl Strategy<Value = AccessPattern> {
    prop::sample::select(AccessPattern::paper_all_patterns())
}

fn arb_instance() -> impl Strategy<Value = PatternInstance> {
    (
        arb_pattern(),
        1usize..=8,
        1u64..=6,
        prop::sample::select(vec![8u64, 64, 512, 1024]),
    )
        .prop_map(|(pattern, n_cps, blocks, record_bytes)| {
            // Keep the file small (a few "blocks" of 1 KiB) so the exhaustive
            // coverage checks stay fast.
            let n_records = (blocks * 1024) / record_bytes;
            PatternInstance::new(pattern, n_cps, n_records.max(1), record_bytes)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every non-ALL pattern covers each file byte exactly once across the
    /// chunks of all CPs, and each CP's buffer is filled exactly once.
    #[test]
    fn chunks_partition_file_and_buffers(inst in arb_instance()) {
        prop_assume!(!inst.is_all());
        let file_bytes = inst.file_bytes();
        let mut file_covered = vec![0u8; file_bytes as usize];
        for cp in 0..inst.n_cps() {
            let mut mem_covered = vec![0u8; inst.cp_bytes(cp) as usize];
            for chunk in inst.chunks_for_cp(cp) {
                prop_assert!(chunk.file_end() <= file_bytes);
                for b in chunk.file_offset..chunk.file_end() {
                    file_covered[b as usize] += 1;
                }
                for m in chunk.mem_offset..chunk.mem_offset + chunk.bytes {
                    mem_covered[m as usize] += 1;
                }
            }
            prop_assert!(
                mem_covered.iter().all(|&c| c == 1),
                "CP {cp} buffer not covered exactly once for {}",
                inst.pattern().name()
            );
        }
        prop_assert!(
            file_covered.iter().all(|&c| c == 1),
            "file not covered exactly once for {}",
            inst.pattern().name()
        );
    }

    /// Decomposing the file block by block into pieces reaches exactly the
    /// same bytes as the per-CP chunks, for every pattern including ALL.
    #[test]
    fn pieces_agree_with_chunks(inst in arb_instance(), block_bytes in prop::sample::select(vec![512u64, 1024, 4096])) {
        let file_bytes = inst.file_bytes();
        let replication = if inst.is_all() { inst.n_cps() as u64 } else { 1 };
        let mut total_piece_bytes = 0u64;
        let mut start = 0u64;
        while start < file_bytes {
            let len = block_bytes.min(file_bytes - start);
            for piece in inst.pieces_in(start, len) {
                prop_assert!(piece.cp < inst.n_cps());
                prop_assert!(piece.file_offset >= start);
                prop_assert!(piece.file_offset + piece.bytes <= start + len);
                prop_assert!(piece.mem_offset + piece.bytes <= inst.cp_bytes(piece.cp));
                total_piece_bytes += piece.bytes;
            }
            start += len;
        }
        prop_assert_eq!(total_piece_bytes, file_bytes * replication);
    }

    /// Chunk sizes in records match the pattern definition bounds: at least
    /// one record, at most the whole file.
    #[test]
    fn chunk_size_is_sane(inst in arb_instance()) {
        let cs = inst.chunk_size_records();
        prop_assert!(cs >= 1);
        prop_assert!(cs <= inst.n_records());
    }

    /// Buffer sizes sum to the file size (times the CP count for ALL).
    #[test]
    fn buffer_sizes_sum_to_file_size(inst in arb_instance()) {
        let total: u64 = (0..inst.n_cps()).map(|cp| inst.cp_bytes(cp)).sum();
        let expected = if inst.is_all() {
            inst.file_bytes() * inst.n_cps() as u64
        } else {
            inst.file_bytes()
        };
        prop_assert_eq!(total, expected);
    }
}

use ddio_patterns::{processor_grid, Dist};

fn arb_dist() -> impl Strategy<Value = Dist> {
    prop::sample::select(vec![Dist::None, Dist::Block, Dist::Cyclic])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// For every distribution, extent, and processor count: the per-owner
    /// pieces partition the dimension with no overlap — every element has
    /// exactly one (owner, local) slot, local indices are dense `0..count`,
    /// and the counts sum to the extent.
    #[test]
    fn dist_partitions_dimension_without_overlap(
        dist in arb_dist(),
        n in 1u64..300,
        p in 1usize..17,
    ) {
        let mut counted = vec![0u64; p];
        let mut seen_local: Vec<Vec<bool>> = vec![Vec::new(); p];
        for i in 0..n {
            let (owner, local) = dist.map(i, n, p);
            prop_assert!(owner < p, "owner {owner} out of range");
            prop_assert!(local < n);
            counted[owner] += 1;
            let slots = &mut seen_local[owner];
            if slots.len() <= local as usize {
                slots.resize(local as usize + 1, false);
            }
            // No overlap: a (owner, local) slot is hit at most once.
            prop_assert!(!slots[local as usize], "{dist:?}: slot ({owner},{local}) hit twice");
            slots[local as usize] = true;
        }
        prop_assert_eq!(counted.iter().sum::<u64>(), n, "counts must sum to the extent");
        for owner in 0..p {
            prop_assert_eq!(counted[owner], dist.count(n, p, owner),
                "count() disagrees with map() for {:?} owner {}", dist, owner);
            // Dense locals: exactly 0..count, no holes.
            prop_assert!(seen_local[owner].iter().all(|&b| b),
                "{dist:?}: owner {owner} has a hole in its local indices");
        }
        prop_assert!(dist.processors_used(p) <= p);
    }

    /// The processor grid always uses exactly `p` processors (collapsed
    /// dimensions excepted) and respects NONE collapsing.
    #[test]
    fn processor_grid_is_consistent(
        rows in arb_dist(),
        cols in arb_dist(),
        p in 1usize..65,
    ) {
        let (r, c) = processor_grid(p, rows, cols);
        prop_assert!(r >= 1 && c >= 1);
        match (rows, cols) {
            (Dist::None, Dist::None) => prop_assert_eq!((r, c), (1, 1)),
            (Dist::None, _) => prop_assert_eq!((r, c), (1, p)),
            (_, Dist::None) => prop_assert_eq!((r, c), (p, 1)),
            _ => {
                prop_assert_eq!(r * c, p, "grid must cover all processors");
                prop_assert!(r <= c, "rows exceed cols: {}x{}", r, c);
            }
        }
    }
}
